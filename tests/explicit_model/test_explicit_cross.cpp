// Cross-validation: the symbolic verifier and the explicit-state checker
// must agree — on genuine repair results and on deliberately corrupted
// ones (mutation testing of the verifiers themselves).

#include <gtest/gtest.h>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "explicit_model/explicit_model.hpp"
#include "repair/cautious.hpp"
#include "repair/lazy.hpp"
#include "repair/verify.hpp"

namespace lr::xmodel {
namespace {

using repair::RepairResult;

void expect_both_accept(prog::DistributedProgram& program,
                        const RepairResult& result) {
  const repair::VerifyReport symbolic = repair::verify_masking(program, result);
  EXPECT_TRUE(symbolic.ok);
  for (const auto& f : symbolic.failures) ADD_FAILURE() << "symbolic: " << f;
  ExplicitModel model(program);
  const ExplicitModel::Report explicit_report = model.verify(result);
  EXPECT_TRUE(explicit_report.ok);
  for (const auto& f : explicit_report.failures) {
    ADD_FAILURE() << "explicit: " << f;
  }
}

void expect_both_reject(prog::DistributedProgram& program,
                        const RepairResult& result) {
  const repair::VerifyReport symbolic = repair::verify_masking(program, result);
  ExplicitModel model(program);
  const ExplicitModel::Report explicit_report = model.verify(result);
  EXPECT_FALSE(symbolic.ok);
  EXPECT_FALSE(explicit_report.ok);
}

TEST(ExplicitCrossTest, LazyChainAcceptedByBoth) {
  auto program = cs::make_chain({.length = 3, .domain = 3});
  const RepairResult result = repair::lazy_repair(*program);
  ASSERT_TRUE(result.success);
  expect_both_accept(*program, result);
}

TEST(ExplicitCrossTest, LazyByzantineAcceptedByBoth) {
  auto program = cs::make_byzantine({.non_generals = 3});
  const RepairResult result = repair::lazy_repair(*program);
  ASSERT_TRUE(result.success);
  expect_both_accept(*program, result);
}

TEST(ExplicitCrossTest, CautiousByzantineAcceptedByBoth) {
  auto program = cs::make_byzantine({.non_generals = 3});
  const RepairResult result = repair::cautious_repair(*program);
  ASSERT_TRUE(result.success);
  expect_both_accept(*program, result);
}

TEST(ExplicitCrossTest, LazyByzantineFailStopAcceptedByBoth) {
  auto program = cs::make_byzantine({.non_generals = 2, .fail_stop = true});
  const RepairResult result = repair::lazy_repair(*program);
  if (result.success) expect_both_accept(*program, result);
}

TEST(ExplicitCrossTest, MutationRemovedGroupRejected) {
  // Dropping one process's entire delta deadlocks recovery somewhere.
  auto program = cs::make_byzantine({.non_generals = 3});
  RepairResult result = repair::lazy_repair(*program);
  ASSERT_TRUE(result.success);
  result.process_deltas[0] = program->space().bdd_false();
  result.delta = result.process_deltas[1] | result.process_deltas[2];
  expect_both_reject(*program, result);
}

TEST(ExplicitCrossTest, MutationPartialGroupRejected) {
  // Removing a *single transition* from a process delta breaks the read
  // restriction: the remaining group is incomplete.
  auto program = cs::make_chain({.length = 3, .domain = 2});
  RepairResult result = repair::lazy_repair(*program);
  ASSERT_TRUE(result.success);
  sym::Space& space = program->space();
  for (auto& dj : result.process_deltas) {
    if (dj.is_false()) continue;
    const bdd::Bdd all_bits = space.cube(sym::Version::kCurrent) &
                              space.cube(sym::Version::kNext);
    const bdd::Bdd one = space.manager().pick_minterm(dj, all_bits);
    dj = dj.minus(one);
    break;
  }
  expect_both_reject(*program, result);
}

TEST(ExplicitCrossTest, MutationWriteViolationRejected) {
  // Adding a transition that writes another process's variable violates
  // the write restriction in both checkers.
  auto program = cs::make_chain({.length = 2, .domain = 2});
  RepairResult result = repair::lazy_repair(*program);
  ASSERT_TRUE(result.success);
  sym::Space& space = program->space();
  // Process p1 writes x1 only; forge a transition that changes x2.
  const std::uint32_t from[3] = {0, 0, 1};
  const std::uint32_t to[3] = {0, 0, 0};
  result.process_deltas[0] |= space.transition(from, to);
  expect_both_reject(*program, result);
}

TEST(ExplicitCrossTest, MutationInvariantOutsideSRejected) {
  auto program = cs::make_chain({.length = 2, .domain = 2});
  RepairResult result = repair::lazy_repair(*program);
  ASSERT_TRUE(result.success);
  // Claim a non-legitimate state as part of S'.
  const std::uint32_t off[3] = {0, 1, 0};
  result.invariant |= program->space().state(off);
  expect_both_reject(*program, result);
}

TEST(ExplicitCrossTest, MutationEmptyInvariantRejected) {
  auto program = cs::make_chain({.length = 2, .domain = 2});
  RepairResult result = repair::lazy_repair(*program);
  ASSERT_TRUE(result.success);
  result.invariant = program->space().bdd_false();
  expect_both_reject(*program, result);
}

TEST(ExplicitCrossTest, EncodeDecodeRoundTrip) {
  auto program = cs::make_chain({.length = 3, .domain = 3});
  (void)program->invariant();
  ExplicitModel model(*program);
  for (std::size_t s = 0; s < model.state_count(); ++s) {
    EXPECT_EQ(model.encode(model.decode(s)), s);
  }
}

TEST(ExplicitCrossTest, RejectsHugeStateSpaces) {
  auto program = cs::make_chain({.length = 30, .domain = 8});
  (void)program->invariant();
  EXPECT_THROW(ExplicitModel model(*program), std::invalid_argument);
}

}  // namespace
}  // namespace lr::xmodel
