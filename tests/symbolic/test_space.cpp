// Unit tests for the finite-domain symbolic layer.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "symbolic/space.hpp"

namespace lr::sym {
namespace {

using bdd::Bdd;

TEST(SpaceTest, VariableMetadata) {
  Space space;
  const VarId a = space.add_variable("a", 2);
  const VarId b = space.add_variable("b", 3);
  const VarId c = space.add_variable("c", 8);
  EXPECT_EQ(space.info(a).bits, 1u);
  EXPECT_EQ(space.info(b).bits, 2u);
  EXPECT_EQ(space.info(c).bits, 3u);
  EXPECT_EQ(space.variable_count(), 3u);
  EXPECT_EQ(space.bits_per_state(), 6u);
  EXPECT_DOUBLE_EQ(space.state_space_size(), 48.0);
  EXPECT_EQ(space.find("b"), b);
  EXPECT_FALSE(space.find("zz").has_value());
}

TEST(SpaceTest, BitsAreInterleavedCurrentNext) {
  Space space;
  const VarId a = space.add_variable("a", 4);
  const auto& info = space.info(a);
  ASSERT_EQ(info.cur_bits.size(), 2u);
  EXPECT_EQ(info.cur_bits[0] + 1, info.next_bits[0]);
  EXPECT_EQ(info.cur_bits[1] + 1, info.next_bits[1]);
  EXPECT_LT(info.next_bits[0], info.cur_bits[1]);
}

TEST(SpaceTest, ValueEqPartitionsTheDomain) {
  Space space;
  const VarId a = space.add_variable("a", 3);
  Bdd all = space.bdd_false();
  for (std::uint32_t v = 0; v < 3; ++v) {
    all |= space.value_eq(a, v, Version::kCurrent);
  }
  EXPECT_EQ(all & space.valid(Version::kCurrent), space.valid(Version::kCurrent));
  // Distinct values are disjoint.
  EXPECT_TRUE(space.value_eq(a, 0, Version::kCurrent)
                  .disjoint(space.value_eq(a, 1, Version::kCurrent)));
  EXPECT_THROW((void)space.value_eq(a, 3, Version::kCurrent),
               std::invalid_argument);
}

TEST(SpaceTest, ValueLtMatchesEnumeration) {
  Space space;
  const VarId a = space.add_variable("a", 6);
  for (std::uint32_t bound = 0; bound <= 6; ++bound) {
    const Bdd lt = space.value_lt(a, bound, Version::kCurrent);
    for (std::uint32_t v = 0; v < 6; ++v) {
      const Bdd st = space.value_eq(a, v, Version::kCurrent);
      EXPECT_EQ(st.leq(lt), v < bound) << "v=" << v << " bound=" << bound;
    }
  }
}

TEST(SpaceTest, ValidExcludesOutOfDomainEncodings) {
  Space space;
  const VarId a = space.add_variable("a", 3);  // 2 bits, value 3 invalid
  (void)a;
  EXPECT_DOUBLE_EQ(space.count_states(space.bdd_true()), 3.0);
  // For power-of-two domains validity is trivial.
  Space space2;
  (void)space2.add_variable("b", 4);
  EXPECT_EQ(space2.valid(Version::kCurrent), space2.bdd_true());
}

TEST(SpaceTest, VarsEqAcrossDifferentDomains) {
  Space space;
  const VarId narrow = space.add_variable("narrow", 2);   // 1 bit
  const VarId wide = space.add_variable("wide", 3);       // 2 bits
  const Bdd eq = space.vars_eq(narrow, Version::kCurrent, wide,
                               Version::kCurrent);
  // Enumerate: equal only when values match (wide's value 2 never matches).
  for (std::uint32_t n = 0; n < 2; ++n) {
    for (std::uint32_t w = 0; w < 3; ++w) {
      const std::uint32_t values[2] = {n, w};
      const Bdd st = space.state(values);
      EXPECT_EQ(st.leq(eq), n == w) << "n=" << n << " w=" << w;
    }
  }
}

TEST(SpaceTest, UnchangedAndIdentity) {
  Space space;
  const VarId a = space.add_variable("a", 3);
  const VarId b = space.add_variable("b", 2);
  const std::uint32_t s1[2] = {2, 1};
  const std::uint32_t s2[2] = {2, 0};
  EXPECT_TRUE(space.transition(s1, s1).leq(space.identity()));
  EXPECT_FALSE(space.transition(s1, s2).leq(space.identity()));
  EXPECT_TRUE(space.transition(s1, s2).leq(space.unchanged(a)));
  EXPECT_FALSE(space.transition(s1, s2).leq(space.unchanged(b)));
}

TEST(SpaceTest, PrimeUnprimeRoundTrip) {
  Space space;
  const VarId a = space.add_variable("a", 4);
  (void)a;
  const std::uint32_t v[1] = {2};
  const Bdd cur = space.state(v, Version::kCurrent);
  const Bdd next = space.state(v, Version::kNext);
  EXPECT_EQ(space.prime(cur), next);
  EXPECT_EQ(space.unprime(next), cur);
  EXPECT_EQ(space.unprime(space.prime(cur)), cur);
}

TEST(SpaceTest, ImageAndPreimageOnHandBuiltRelation) {
  Space space;
  const VarId x = space.add_variable("x", 4);
  (void)x;
  // rel: 0 -> 1 -> 2 -> 3, and 3 -> 3.
  Bdd rel = space.bdd_false();
  auto tr = [&](std::uint32_t from, std::uint32_t to) {
    const std::uint32_t f[1] = {from};
    const std::uint32_t t[1] = {to};
    return space.transition(f, t);
  };
  rel = tr(0, 1) | tr(1, 2) | tr(2, 3) | tr(3, 3);

  auto st = [&](std::uint32_t v) {
    const std::uint32_t s[1] = {v};
    return space.state(s);
  };
  EXPECT_EQ(space.image(rel, st(0)), st(1));
  EXPECT_EQ(space.image(rel, st(0) | st(1)), st(1) | st(2));
  EXPECT_EQ(space.image(rel, st(3)), st(3));
  EXPECT_EQ(space.preimage(rel, st(3)), st(2) | st(3));
  EXPECT_EQ(space.preimage(rel, st(0)), space.bdd_false());
}

TEST(SpaceTest, ForwardAndBackwardReachability) {
  Space space;
  const VarId x = space.add_variable("x", 8);
  (void)x;
  auto tr = [&](std::uint32_t from, std::uint32_t to) {
    const std::uint32_t f[1] = {from};
    const std::uint32_t t[1] = {to};
    return space.transition(f, t);
  };
  auto st = [&](std::uint32_t v) {
    const std::uint32_t s[1] = {v};
    return space.state(s);
  };
  // Two disconnected chains: 0->1->2 and 4->5.
  const Bdd rel = tr(0, 1) | tr(1, 2) | tr(4, 5);
  EXPECT_EQ(space.forward_reachable(rel, st(0)), st(0) | st(1) | st(2));
  EXPECT_EQ(space.forward_reachable(rel, st(4)), st(4) | st(5));
  EXPECT_EQ(space.backward_reachable(rel, st(2)), st(0) | st(1) | st(2));
  EXPECT_EQ(space.backward_reachable(rel, st(7)), st(7));
}

TEST(SpaceTest, HasSuccessorInFindsCycles) {
  Space space;
  const VarId x = space.add_variable("x", 4);
  (void)x;
  auto tr = [&](std::uint32_t from, std::uint32_t to) {
    const std::uint32_t f[1] = {from};
    const std::uint32_t t[1] = {to};
    return space.transition(f, t);
  };
  auto st = [&](std::uint32_t v) {
    const std::uint32_t s[1] = {v};
    return space.state(s);
  };
  // 0 -> 1 -> 0 cycle; 2 -> 3 acyclic.
  const Bdd rel = tr(0, 1) | tr(1, 0) | tr(2, 3);
  // νZ. Z ∧ pre(Z) starting from everything finds exactly the cycle.
  Bdd z = space.valid(Version::kCurrent);
  while (true) {
    const Bdd next = space.has_successor_in(rel, z);
    if (next == z) break;
    z = next;
  }
  EXPECT_EQ(z, st(0) | st(1));
}

TEST(SpaceTest, CountStatesAndTransitions) {
  Space space;
  const VarId a = space.add_variable("a", 3);
  const VarId b = space.add_variable("b", 2);
  (void)b;
  EXPECT_DOUBLE_EQ(space.count_states(space.bdd_true()), 6.0);
  EXPECT_DOUBLE_EQ(
      space.count_states(space.value_eq(a, 1, Version::kCurrent)), 2.0);
  // Identity has one transition per valid state.
  EXPECT_DOUBLE_EQ(space.count_transitions(space.identity()), 6.0);
  EXPECT_DOUBLE_EQ(space.count_transitions(space.bdd_true()), 36.0);
}

TEST(SpaceTest, ForeachStateEnumeratesValidStatesOnly) {
  Space space;
  (void)space.add_variable("a", 3);
  (void)space.add_variable("b", 2);
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  space.foreach_state(space.bdd_true(),
                      [&](std::span<const std::uint32_t> v) {
                        seen.insert({v[0], v[1]});
                      });
  EXPECT_EQ(seen.size(), 6u);
  for (const auto& [a, b] : seen) {
    EXPECT_LT(a, 3u);
    EXPECT_LT(b, 2u);
  }
}

TEST(SpaceTest, ForeachTransitionDecodesBothEndpoints) {
  Space space;
  (void)space.add_variable("a", 3);
  const std::uint32_t from[1] = {2};
  const std::uint32_t to[1] = {0};
  const bdd::Bdd t = space.transition(from, to);
  int count = 0;
  space.foreach_transition(t, [&](std::span<const std::uint32_t> f,
                                  std::span<const std::uint32_t> g) {
    ++count;
    EXPECT_EQ(f[0], 2u);
    EXPECT_EQ(g[0], 0u);
  });
  EXPECT_EQ(count, 1);
}

TEST(SpaceTest, AddVariableAfterFreezeThrows) {
  Space space;
  (void)space.add_variable("a", 2);
  (void)space.identity();  // freezes
  EXPECT_THROW((void)space.add_variable("late", 2), std::logic_error);
}

TEST(SpaceTest, StateRejectsWrongArity) {
  Space space;
  (void)space.add_variable("a", 2);
  (void)space.add_variable("b", 2);
  const std::uint32_t too_few[1] = {0};
  EXPECT_THROW((void)space.state(too_few), std::invalid_argument);
}

TEST(SpaceTest, StateToString) {
  Space space;
  (void)space.add_variable("x", 4);
  (void)space.add_variable("y", 2);
  const std::uint32_t v[2] = {3, 1};
  EXPECT_EQ(space.state_to_string(v), "x=3, y=1");
}

}  // namespace
}  // namespace lr::sym
