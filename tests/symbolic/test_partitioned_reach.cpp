// Property test: partitioned (saturation) reachability computes exactly
// the same fixpoint as monolithic breadth-first reachability, on random
// partitioned relations.

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"
#include "symbolic/space.hpp"

namespace lr::sym {
namespace {

class PartitionedReachTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionedReachTest, AgreesWithMonolithicBfs) {
  lr::support::SplitMix64 rng(GetParam());
  Space space;
  const VarId a = space.add_variable("a", 3);
  const VarId b = space.add_variable("b", 4);
  const VarId c = space.add_variable("c", 2);
  (void)a;
  (void)b;
  (void)c;

  for (int round = 0; round < 8; ++round) {
    // 3 random partitions of ~12 transitions each.
    std::vector<bdd::Bdd> parts;
    bdd::Bdd all = space.bdd_false();
    for (int p = 0; p < 3; ++p) {
      bdd::Bdd rel = space.bdd_false();
      for (int t = 0; t < 12; ++t) {
        const std::uint32_t from[3] = {
            static_cast<std::uint32_t>(rng.below(3)),
            static_cast<std::uint32_t>(rng.below(4)),
            static_cast<std::uint32_t>(rng.below(2))};
        const std::uint32_t to[3] = {
            static_cast<std::uint32_t>(rng.below(3)),
            static_cast<std::uint32_t>(rng.below(4)),
            static_cast<std::uint32_t>(rng.below(2))};
        rel |= space.transition(from, to);
      }
      all |= rel;
      parts.push_back(std::move(rel));
    }
    const std::uint32_t start[3] = {0, 0, 0};
    const bdd::Bdd from = space.state(start);
    EXPECT_EQ(space.forward_reachable(parts, from),
              space.forward_reachable(all, from));
    // Also from a random bigger seed set.
    const std::uint32_t start2[3] = {
        static_cast<std::uint32_t>(rng.below(3)),
        static_cast<std::uint32_t>(rng.below(4)),
        static_cast<std::uint32_t>(rng.below(2))};
    const bdd::Bdd seeds = from | space.state(start2);
    EXPECT_EQ(space.forward_reachable(parts, seeds),
              space.forward_reachable(all, seeds));
  }
}

TEST_P(PartitionedReachTest, EmptyPartitionListIsIdentity) {
  Space space;
  (void)space.add_variable("a", 4);
  const std::uint32_t s[1] = {2};
  const bdd::Bdd from = space.state(s);
  EXPECT_EQ(space.forward_reachable(std::span<const bdd::Bdd>{}, from), from);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionedReachTest,
                         ::testing::Values(1ull, 9ull, 99ull));

}  // namespace
}  // namespace lr::sym
