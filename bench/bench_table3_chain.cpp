// Table II-b: stabilizing chain Sc^n — lazy repair times across chain
// lengths. Domain 8 per variable matches the paper's state-space range
// (Sc^20 ≈ 10^19 ... Sc^30 ≈ 10^28).

// `--batch-jobs=N` runs the same sweep (see table_specs.hpp) concurrently
// through the batch executor instead of google-benchmark.

#include "bench_common.hpp"
#include "casestudies/chain.hpp"
#include "repair/lazy.hpp"
#include "support/stopwatch.hpp"
#include "table_specs.hpp"

namespace {

using lr::bench::record;

void BM_Chain_Lazy(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program = lr::cs::make_chain({.length = length, .domain = 8});
    lr::support::Stopwatch watch;
    const auto result = lr::repair::lazy_repair(*program);
    if (!result.success) state.SkipWithError("repair failed");
    record("Sc^" + std::to_string(length), "lazy (group loop)", result,
           watch.seconds());
    state.counters["step1_s"] = result.stats.step1_seconds;
    state.counters["step2_s"] = result.stats.step2_seconds;
    state.counters["reach"] = result.stats.reachable_states;
  }
}

void BM_Chain_Lazy_OneShot(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program = lr::cs::make_chain({.length = length, .domain = 8});
    lr::repair::Options options;
    options.group_method = lr::repair::GroupMethod::kOneShot;
    lr::support::Stopwatch watch;
    const auto result = lr::repair::lazy_repair(*program, options);
    if (!result.success) state.SkipWithError("repair failed");
    record("Sc^" + std::to_string(length), "lazy (one-shot)", result,
           watch.seconds());
  }
}

BENCHMARK(BM_Chain_Lazy)
    ->Arg(10)->Arg(15)->Arg(20)->Arg(25)->Arg(30)->Arg(35)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
// The one-shot universal quantification blows up past Sc^30 (the
// implication BDD over ~240 unreadable bits grows super-linearly); the
// group loop keeps scaling, so the long tail uses it alone.
BENCHMARK(BM_Chain_Lazy_OneShot)
    ->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

LR_BENCH_MAIN_WITH_BATCH("Table II-b — Stabilizing chain",
                         ::lr::bench::table3_tasks)
