// Ablation A2: ExpandGroup (Algorithm 2, lines 13-18). The paper's claim:
// expanding an accepted group across readable-but-unwritten variables
// removes an exponential number of loop iterations. We measure Algorithm
// 2's loop with and without expansion, and against the one-shot universal
// quantification that computes the same realizable set in a single pass.

#include "bench_common.hpp"
#include "casestudies/byzantine.hpp"
#include "repair/lazy.hpp"
#include "support/stopwatch.hpp"

namespace {

using lr::bench::record;
using lr::repair::GroupMethod;

void run(benchmark::State& state, bool expand, GroupMethod method,
         const char* label) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program = lr::cs::make_byzantine({.non_generals = n});
    lr::repair::Options options;
    options.group_method = method;
    options.use_expand_group = expand;
    lr::support::Stopwatch watch;
    const auto result = lr::repair::lazy_repair(*program, options);
    if (!result.success) state.SkipWithError("repair failed");
    record("BA^" + std::to_string(n), label, result, watch.seconds());
    state.counters["group_iterations"] =
        static_cast<double>(result.stats.group_iterations);
    state.counters["expansions"] =
        static_cast<double>(result.stats.expand_successes);
  }
}

void BM_LoopWithExpand(benchmark::State& state) {
  run(state, true, GroupMethod::kPaperLoop, "group loop + ExpandGroup");
}
void BM_LoopNoExpand(benchmark::State& state) {
  run(state, false, GroupMethod::kPaperLoop, "group loop, no ExpandGroup");
}
void BM_OneShot(benchmark::State& state) {
  run(state, true, GroupMethod::kOneShot, "one-shot quantification");
}

BENCHMARK(BM_LoopWithExpand)
    ->DenseRange(3, 5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_LoopNoExpand)
    ->DenseRange(3, 5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_OneShot)
    ->DenseRange(3, 5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The paper's "exponential number of iterations" claim in its purest form:
// one worker plus k readable spectator variables that are irrelevant to the
// repair. Without ExpandGroup, Algorithm 2 enumerates one group per
// spectator valuation (2^k of them); with it, the first accepted group
// expands across every spectator and the loop finishes immediately.
std::unique_ptr<lr::prog::DistributedProgram> make_spectators(std::size_t k) {
  using lr::lang::Expr;
  using lr::lang::action;
  auto p = std::make_unique<lr::prog::DistributedProgram>(
      "spectators-" + std::to_string(k));
  const lr::sym::VarId x = p->add_variable("x", 3);
  std::vector<lr::sym::VarId> spectators(k);
  for (std::size_t i = 0; i < k; ++i) {
    spectators[i] = p->add_variable("s" + std::to_string(i), 2);
  }
  lr::prog::Process worker;
  worker.name = "worker";
  worker.reads = spectators;
  worker.reads.push_back(x);
  worker.writes = {x};
  worker.actions.push_back(
      action("reset", Expr::var(x) == 1u).assign(x, Expr::constant(0)));
  p->add_process(std::move(worker));
  p->add_fault(
      action("glitch", Expr::var(x) == 0u).assign(x, Expr::constant(1)));
  p->set_invariant(Expr::var(x) == 0u);
  p->add_bad_states(Expr::var(x) == 2u);
  return p;
}

void run_spectators(benchmark::State& state, bool expand) {
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program = make_spectators(k);
    lr::repair::Options options;
    options.use_expand_group = expand;
    lr::support::Stopwatch watch;
    const auto result = lr::repair::lazy_repair(*program, options);
    if (!result.success) state.SkipWithError("repair failed");
    record("spectators k=" + std::to_string(k),
           expand ? "group loop + ExpandGroup" : "group loop, no ExpandGroup",
           result, watch.seconds());
    state.counters["group_iterations"] =
        static_cast<double>(result.stats.group_iterations);
  }
}

void BM_SpectatorsWithExpand(benchmark::State& state) {
  run_spectators(state, true);
}
void BM_SpectatorsNoExpand(benchmark::State& state) {
  run_spectators(state, false);
}

BENCHMARK(BM_SpectatorsWithExpand)
    ->Arg(6)->Arg(10)->Arg(14)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_SpectatorsNoExpand)
    ->Arg(6)->Arg(10)->Arg(14)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

LR_BENCH_MAIN("Ablation A2 — ExpandGroup in Algorithm 2")
