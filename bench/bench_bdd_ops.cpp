// Ablation A3: throughput of the BDD engine primitives the repair
// algorithms are built from. Each iteration builds *fresh* operands in a
// fresh manager and manually times only the operation under test —
// otherwise the operation cache would turn every iteration after the first
// into a table lookup.

#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bdd/bdd.hpp"
#include "support/rng.hpp"

namespace {

using lr::bdd::Bdd;
using lr::bdd::Manager;
using lr::bdd::VarIndex;

Manager::Options small_manager() {
  Manager::Options options;
  options.cache_log2 = 16;
  options.initial_capacity = 1u << 14;
  return options;
}

/// Random CNF-ish function with window-local clauses (globally random
/// 3-CNF has exponential BDDs; the loosely-coupled relations the repair
/// algorithms manipulate look like this instead).
Bdd random_function(Manager& mgr, lr::support::SplitMix64& rng,
                    std::uint32_t vars, int clauses) {
  Bdd f = mgr.bdd_true();
  for (int c = 0; c < clauses; ++c) {
    const auto base =
        static_cast<VarIndex>(rng.below(vars > 8 ? vars - 8 : 1));
    Bdd clause = mgr.bdd_false();
    for (int l = 0; l < 3; ++l) {
      const auto v = static_cast<VarIndex>(base + rng.below(8));
      clause |= rng.flip() ? mgr.bdd_var(v) : mgr.bdd_nvar(v);
    }
    f &= clause;
  }
  return f;
}

template <typename Operation>
void run_manual(benchmark::State& state, Operation&& op) {
  const auto nvars = static_cast<std::uint32_t>(state.range(0));
  lr::support::SplitMix64 rng(0x5eed ^ nvars);
  for (auto _ : state) {
    Manager mgr(small_manager());
    std::vector<VarIndex> vars;
    for (std::uint32_t i = 0; i < nvars; ++i) vars.push_back(mgr.new_var());
    const Bdd f = random_function(mgr, rng, nvars, nvars);
    const Bdd g = random_function(mgr, rng, nvars, nvars);
    std::vector<VarIndex> half;
    for (std::uint32_t i = 0; i < nvars; i += 2) half.push_back(vars[i]);
    const Bdd cube = mgr.make_cube(half);

    const auto start = std::chrono::steady_clock::now();
    op(mgr, f, g, cube);
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(stop - start).count());
  }
}

void BM_Conjunction(benchmark::State& state) {
  run_manual(state, [](Manager&, const Bdd& f, const Bdd& g, const Bdd&) {
    benchmark::DoNotOptimize(f & g);
  });
}

void BM_Ite(benchmark::State& state) {
  run_manual(state,
             [](Manager& mgr, const Bdd& f, const Bdd& g, const Bdd& cube) {
               benchmark::DoNotOptimize(mgr.apply_ite(cube, f, g));
             });
}

void BM_Exists(benchmark::State& state) {
  run_manual(state,
             [](Manager& mgr, const Bdd& f, const Bdd&, const Bdd& cube) {
               benchmark::DoNotOptimize(mgr.exists(f, cube));
             });
}

void BM_AndExists(benchmark::State& state) {
  run_manual(state,
             [](Manager& mgr, const Bdd& f, const Bdd& g, const Bdd& cube) {
               benchmark::DoNotOptimize(mgr.and_exists(f, g, cube));
             });
}

void BM_Permute(benchmark::State& state) {
  const auto nvars = static_cast<std::uint32_t>(state.range(0));
  lr::support::SplitMix64 rng(0xabc ^ nvars);
  for (auto _ : state) {
    Manager mgr(small_manager());
    for (std::uint32_t i = 0; i < nvars; ++i) (void)mgr.new_var();
    std::vector<VarIndex> perm(nvars);
    for (std::uint32_t i = 0; i + 1 < nvars; i += 2) {
      perm[i] = i + 1;
      perm[i + 1] = i;
    }
    if (nvars % 2 == 1) perm[nvars - 1] = nvars - 1;
    const lr::bdd::PermId pid = mgr.register_permutation(perm);
    const Bdd f = random_function(mgr, rng, nvars, nvars);
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(mgr.permute(f, pid));
    const auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(
        std::chrono::duration<double>(stop - start).count());
  }
}

void BM_SatCount(benchmark::State& state) {
  run_manual(state,
             [](Manager& mgr, const Bdd& f, const Bdd&, const Bdd&) {
               const auto n = mgr.var_count();
               benchmark::DoNotOptimize(mgr.sat_count(f, n));
             });
}

void BM_GarbageCollection(benchmark::State& state) {
  const auto nvars = static_cast<std::uint32_t>(state.range(0));
  lr::support::SplitMix64 rng(31 ^ nvars);
  for (auto _ : state) {
    Manager mgr(small_manager());
    for (std::uint32_t i = 0; i < nvars; ++i) (void)mgr.new_var();
    const Bdd keep = random_function(mgr, rng, nvars, nvars);
    for (int i = 0; i < 20; ++i) {
      (void)random_function(mgr, rng, nvars, nvars);  // garbage
    }
    const auto start = std::chrono::steady_clock::now();
    mgr.collect_garbage();
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(keep.id());
    state.SetIterationTime(
        std::chrono::duration<double>(stop - start).count());
  }
}

BENCHMARK(BM_Conjunction)->Arg(32)->Arg(64)->Arg(128)->UseManualTime()->Iterations(200);
BENCHMARK(BM_Ite)->Arg(32)->Arg(64)->Arg(128)->UseManualTime()->Iterations(200);
BENCHMARK(BM_Exists)->Arg(32)->Arg(64)->Arg(128)->UseManualTime()->Iterations(200);
BENCHMARK(BM_AndExists)->Arg(32)->Arg(64)->Arg(128)->UseManualTime()->Iterations(200);
BENCHMARK(BM_Permute)->Arg(32)->Arg(64)->Arg(128)->UseManualTime()->Iterations(200);
BENCHMARK(BM_SatCount)->Arg(32)->Arg(64)->Arg(128)->UseManualTime()->Iterations(200);
BENCHMARK(BM_GarbageCollection)->Arg(64)->UseManualTime()->Iterations(200);

}  // namespace

BENCHMARK_MAIN();
