#pragma once

// Shared scaffolding for the table-reproducing benchmarks: each benchmark
// run registers one row; after google-benchmark finishes, the binary prints
// the paper-style table assembled from those rows (this is what
// EXPERIMENTS.md quotes).
//
// Every bench binary also understands two observability flags (stripped
// from argv before google-benchmark sees them):
//   --metrics-json=FILE   write the metrics registry as a JSON run report
//   --trace-out=FILE      collect spans and write Chrome trace-event JSON

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "repair/batch.hpp"
#include "repair/report.hpp"
#include "repair/types.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/trace.hpp"

namespace lr::bench {

struct Row {
  std::string instance;
  std::string algorithm;
  double reachable = -1;
  double step1 = 0;
  double step2 = 0;
  double total = 0;
  double invariant_states = -1;
  bool ok = false;
};

inline std::vector<Row>& rows() {
  static std::vector<Row> storage;
  return storage;
}

inline void record(const std::string& instance, const std::string& algorithm,
                   const repair::RepairResult& result, double total_seconds) {
  rows().push_back(Row{instance, algorithm, result.stats.reachable_states,
                       result.stats.step1_seconds, result.stats.step2_seconds,
                       total_seconds, result.stats.invariant_states,
                       result.success});
  // Mirror the run into the metrics registry so --metrics-json reports
  // carry per-instance numbers alongside the aggregate repair.*/bdd.* keys.
  repair::record_run_metrics(result.stats);
  repair::record_run_metrics(result.stats,
                             "bench." + instance + "." + algorithm);
  support::metrics::registry().add("bench.runs");
}

/// Prints the collected rows as one paper-style table.
inline void print_table(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  support::Table table({"Instance", "Algorithm", "Reachable states",
                        "Step 1", "Step 2", "Total", "|S'|", "Result"});
  for (const Row& row : rows()) {
    table.add_row({row.instance, row.algorithm,
                   support::format_state_count(row.reachable),
                   support::format_duration(row.step1),
                   support::format_duration(row.step2),
                   support::format_duration(row.total),
                   support::format_state_count(row.invariant_states),
                   row.ok ? "ok" : "FAILED"});
  }
  table.print(std::cout);
}

/// Removes "--key=value" from argv (google-benchmark rejects flags it does
/// not know) and returns the value, or "" when absent.
inline std::string extract_flag(int* argc, char** argv, const char* key) {
  const std::string prefix = std::string(key) + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return value;
}

/// Batch path: runs the whole spec list as one repair::run_batch call
/// (`--batch-jobs=N` concurrent repairs, one BDD manager each) and prints
/// the same paper-style table from the batch report. Returns the process
/// exit code.
inline int run_batch_sweep(const std::string& title,
                           const std::vector<repair::BatchTask>& tasks,
                           std::size_t jobs) {
  repair::BatchOptions options;
  options.jobs = jobs;
  options.metrics_prefix = "bench";
  const repair::BatchReport report = repair::run_batch(tasks, options);
  for (const repair::BatchItemResult& item : report.items) {
    rows().push_back(Row{item.name, item.algorithm,
                         item.stats.reachable_states,
                         item.stats.step1_seconds, item.stats.step2_seconds,
                         item.seconds, item.stats.invariant_states,
                         item.ok()});
  }
  print_table(title);
  std::cout << "\nbatch sweep: " << report.ok_count() << "/"
            << report.items.size() << " ok, wall "
            << support::format_duration(report.wall_seconds)
            << " (jobs=" << report.jobs << ")\n";
  support::metrics::registry().add("bench.runs", tasks.size());
  return report.failed_count() == 0 ? 0 : 1;
}

/// Writes the observability artifacts requested on the command line.
inline void write_reports(const std::string& trace_path,
                          const std::string& metrics_path) {
  if (!trace_path.empty()) {
    support::trace::stop();
    if (!support::trace::write_chrome_json_file(trace_path)) {
      std::cerr << "cannot write " << trace_path << "\n";
    }
  }
  if (!metrics_path.empty() && !repair::write_metrics_report(metrics_path)) {
    std::cerr << "cannot write " << metrics_path << "\n";
  }
}

}  // namespace lr::bench

/// Custom main: run benchmarks, then print the assembled table and any
/// requested observability artifacts.
#define LR_BENCH_MAIN(TITLE)                                              \
  int main(int argc, char** argv) {                                       \
    const std::string lr_metrics_path =                                   \
        ::lr::bench::extract_flag(&argc, argv, "--metrics-json");         \
    const std::string lr_trace_path =                                     \
        ::lr::bench::extract_flag(&argc, argv, "--trace-out");            \
    if (!lr_trace_path.empty()) ::lr::support::trace::start();            \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    ::lr::bench::print_table(TITLE);                                      \
    ::lr::bench::write_reports(lr_trace_path, lr_metrics_path);           \
    return 0;                                                             \
  }

/// Like LR_BENCH_MAIN, but the binary also understands --batch-jobs=N:
/// when given, the google-benchmark path is skipped and SPECS_FN()'s task
/// list runs concurrently through the batch executor instead.
#define LR_BENCH_MAIN_WITH_BATCH(TITLE, SPECS_FN)                         \
  int main(int argc, char** argv) {                                       \
    const std::string lr_metrics_path =                                   \
        ::lr::bench::extract_flag(&argc, argv, "--metrics-json");         \
    const std::string lr_trace_path =                                     \
        ::lr::bench::extract_flag(&argc, argv, "--trace-out");            \
    const std::string lr_batch_jobs =                                     \
        ::lr::bench::extract_flag(&argc, argv, "--batch-jobs");           \
    if (!lr_trace_path.empty()) ::lr::support::trace::start();            \
    int lr_exit = 0;                                                      \
    if (!lr_batch_jobs.empty()) {                                         \
      const long jobs = std::strtol(lr_batch_jobs.c_str(), nullptr, 10);  \
      lr_exit = ::lr::bench::run_batch_sweep(                             \
          TITLE, SPECS_FN(), jobs < 1 ? 1 : static_cast<std::size_t>(jobs)); \
    } else {                                                              \
      ::benchmark::Initialize(&argc, argv);                               \
      if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
      ::benchmark::RunSpecifiedBenchmarks();                              \
      ::benchmark::Shutdown();                                            \
      ::lr::bench::print_table(TITLE);                                    \
    }                                                                     \
    ::lr::bench::write_reports(lr_trace_path, lr_metrics_path);           \
    return lr_exit;                                                       \
  }
