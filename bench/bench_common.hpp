#pragma once

// Shared scaffolding for the table-reproducing benchmarks: each benchmark
// run registers one row; after google-benchmark finishes, the binary prints
// the paper-style table assembled from those rows (this is what
// EXPERIMENTS.md quotes).

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "repair/types.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace lr::bench {

struct Row {
  std::string instance;
  std::string algorithm;
  double reachable = -1;
  double step1 = 0;
  double step2 = 0;
  double total = 0;
  double invariant_states = -1;
  bool ok = false;
};

inline std::vector<Row>& rows() {
  static std::vector<Row> storage;
  return storage;
}

inline void record(const std::string& instance, const std::string& algorithm,
                   const repair::RepairResult& result, double total_seconds) {
  rows().push_back(Row{instance, algorithm, result.stats.reachable_states,
                       result.stats.step1_seconds, result.stats.step2_seconds,
                       total_seconds, result.stats.invariant_states,
                       result.success});
}

/// Prints the collected rows as one paper-style table.
inline void print_table(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  support::Table table({"Instance", "Algorithm", "Reachable states",
                        "Step 1", "Step 2", "Total", "|S'|", "Result"});
  for (const Row& row : rows()) {
    table.add_row({row.instance, row.algorithm,
                   support::format_state_count(row.reachable),
                   support::format_duration(row.step1),
                   support::format_duration(row.step2),
                   support::format_duration(row.total),
                   support::format_state_count(row.invariant_states),
                   row.ok ? "ok" : "FAILED"});
  }
  table.print(std::cout);
}

}  // namespace lr::bench

/// Custom main: run benchmarks, then print the assembled table.
#define LR_BENCH_MAIN(TITLE)                            \
  int main(int argc, char** argv) {                     \
    ::benchmark::Initialize(&argc, argv);               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();              \
    ::benchmark::Shutdown();                            \
    ::lr::bench::print_table(TITLE);                    \
    return 0;                                           \
  }
