// Table I: Byzantine agreement — cautious repair vs. lazy repair
// (Step 1 / Step 2 split), across instance sizes.
//
// Two group primitives are measured for both algorithms:
//  * the enumerated per-group discipline the original tools used
//    (GroupMethod::kPaperLoop — the paper-faithful configuration), and
//  * the vectorized one-shot closure (GroupMethod::kOneShot), which shows
//    how much of the gap survives a modern symbolic implementation.

// `--batch-jobs=N` runs the same sweep (see table_specs.hpp) concurrently
// through the batch executor instead of google-benchmark.

#include "bench_common.hpp"
#include "casestudies/byzantine.hpp"
#include "repair/cautious.hpp"
#include "repair/lazy.hpp"
#include "support/stopwatch.hpp"
#include "table_specs.hpp"

namespace {

using lr::bench::record;
using lr::repair::GroupMethod;
using lr::repair::Options;

void run_lazy(benchmark::State& state, GroupMethod method) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program = lr::cs::make_byzantine({.non_generals = n});
    Options options;
    options.group_method = method;
    lr::support::Stopwatch watch;
    const auto result = lr::repair::lazy_repair(*program, options);
    const double seconds = watch.seconds();
    benchmark::DoNotOptimize(result.success);
    if (!result.success) state.SkipWithError("repair failed");
    record("BA^" + std::to_string(n),
           method == GroupMethod::kPaperLoop ? "lazy (group loop)"
                                             : "lazy (one-shot)",
           result, seconds);
    state.counters["step1_s"] = result.stats.step1_seconds;
    state.counters["step2_s"] = result.stats.step2_seconds;
    state.counters["reach"] = result.stats.reachable_states;
  }
}

void run_cautious(benchmark::State& state, GroupMethod method) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program = lr::cs::make_byzantine({.non_generals = n});
    Options options;
    options.group_method = method;
    lr::support::Stopwatch watch;
    const auto result = lr::repair::cautious_repair(*program, options);
    const double seconds = watch.seconds();
    benchmark::DoNotOptimize(result.success);
    if (!result.success) state.SkipWithError("repair failed");
    record("BA^" + std::to_string(n),
           method == GroupMethod::kPaperLoop ? "cautious (group loop)"
                                             : "cautious (one-shot)",
           result, seconds);
    state.counters["total_s"] = seconds;
  }
}

void BM_Lazy_GroupLoop(benchmark::State& state) {
  run_lazy(state, GroupMethod::kPaperLoop);
}
void BM_Cautious_GroupLoop(benchmark::State& state) {
  run_cautious(state, GroupMethod::kPaperLoop);
}
void BM_Lazy_OneShot(benchmark::State& state) {
  run_lazy(state, GroupMethod::kOneShot);
}
void BM_Cautious_OneShot(benchmark::State& state) {
  run_cautious(state, GroupMethod::kOneShot);
}

// Paper-faithful discipline: the gap the paper reports.
BENCHMARK(BM_Lazy_GroupLoop)
    ->DenseRange(3, 7)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Cautious_GroupLoop)
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
// Modern primitive: larger instances (12^15 ≈ 1.5e16 states ≈ the paper's
// biggest BA row).
BENCHMARK(BM_Lazy_OneShot)
    ->Arg(6)->Arg(9)->Arg(12)->Arg(15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_Cautious_OneShot)
    ->Arg(6)->Arg(9)->Arg(12)->Arg(15)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

LR_BENCH_MAIN_WITH_BATCH(
    "Table I — Byzantine agreement: cautious vs. lazy repair",
    ::lr::bench::table1_tasks)
