// Ablation A1: the Step-1 heuristic ("restrict the search to the states the
// fault-intolerant program reaches in the presence of faults"). The paper's
// claim: *pure* lazy repair (no heuristic) does not improve on cautious
// repair; the heuristic is what makes it fast. BAFS makes the contrast
// visible because its full state space (24^n states) dwarfs its reachable
// set.

#include "bench_common.hpp"
#include "casestudies/byzantine.hpp"
#include "repair/lazy.hpp"
#include "support/stopwatch.hpp"

namespace {

using lr::bench::record;

void run(benchmark::State& state, bool heuristic) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program =
        lr::cs::make_byzantine({.non_generals = n, .fail_stop = true});
    lr::repair::Options options;
    options.group_method = lr::repair::GroupMethod::kOneShot;
    options.restrict_to_reachable = heuristic;
    lr::support::Stopwatch watch;
    const auto result = lr::repair::lazy_repair(*program, options);
    if (!result.success) state.SkipWithError("repair failed");
    record("BAFS^" + std::to_string(n),
           heuristic ? "lazy + reachability heuristic"
                     : "pure lazy (full state space)",
           result, watch.seconds());
    state.counters["search_space"] = result.stats.reachable_states;
  }
}

void BM_WithHeuristic(benchmark::State& state) { run(state, true); }
void BM_WithoutHeuristic(benchmark::State& state) { run(state, false); }

BENCHMARK(BM_WithHeuristic)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_WithoutHeuristic)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

LR_BENCH_MAIN("Ablation A1 — Step-1 reachability heuristic (Section V-A)")
