#pragma once

// The Table I–III sweep configurations, shared between the
// google-benchmark binaries (serial, per-configuration measurement) and
// the batch driver (`--batch-jobs=N`: the whole sweep as one
// repair::run_batch call). Keeping one spec list guarantees the two paths
// repair identical instances.

#include <cstddef>
#include <string>
#include <vector>

#include "casestudies/byzantine.hpp"
#include "casestudies/chain.hpp"
#include "repair/batch.hpp"

namespace lr::bench {

using repair::BatchTask;
using repair::GroupMethod;

inline BatchTask byzantine_task(std::size_t n, bool fail_stop,
                                BatchTask::Algorithm algorithm,
                                GroupMethod method) {
  BatchTask task;
  task.name = (fail_stop ? "BAFS^" : "BA^") + std::to_string(n);
  task.algorithm = algorithm;
  task.options.group_method = method;
  task.make_program = [n, fail_stop] {
    return cs::make_byzantine({.non_generals = n, .fail_stop = fail_stop});
  };
  // The tables measure synthesis cost; soundness is covered by the test
  // suite, and verification would double the timed work.
  task.verify = false;
  return task;
}

inline BatchTask chain_task(std::size_t length, GroupMethod method) {
  BatchTask task;
  task.name = "Sc^" + std::to_string(length);
  task.algorithm = BatchTask::Algorithm::kLazy;
  task.options.group_method = method;
  task.make_program = [length] {
    return cs::make_chain({.length = length, .domain = 8});
  };
  task.verify = false;
  return task;
}

/// Table I — Byzantine agreement, cautious vs. lazy. Mirrors the
/// BENCHMARK registrations in bench_table1_byzantine.cpp.
inline std::vector<BatchTask> table1_tasks() {
  std::vector<BatchTask> tasks;
  for (std::size_t n = 3; n <= 7; ++n) {
    tasks.push_back(byzantine_task(n, false, BatchTask::Algorithm::kLazy,
                                   GroupMethod::kPaperLoop));
  }
  for (std::size_t n = 3; n <= 6; ++n) {
    tasks.push_back(byzantine_task(n, false, BatchTask::Algorithm::kCautious,
                                   GroupMethod::kPaperLoop));
  }
  for (const std::size_t n : {6, 9, 12, 15}) {
    tasks.push_back(byzantine_task(n, false, BatchTask::Algorithm::kLazy,
                                   GroupMethod::kOneShot));
    tasks.push_back(byzantine_task(n, false, BatchTask::Algorithm::kCautious,
                                   GroupMethod::kOneShot));
  }
  return tasks;
}

/// Table II-a — Byzantine agreement with fail-stop faults (BAFS^n).
inline std::vector<BatchTask> table2_tasks() {
  std::vector<BatchTask> tasks;
  for (std::size_t n = 3; n <= 5; ++n) {
    tasks.push_back(byzantine_task(n, true, BatchTask::Algorithm::kLazy,
                                   GroupMethod::kPaperLoop));
  }
  for (const std::size_t n : {4, 6, 8, 10, 12}) {
    tasks.push_back(byzantine_task(n, true, BatchTask::Algorithm::kLazy,
                                   GroupMethod::kOneShot));
  }
  for (const std::size_t n : {4, 6}) {
    tasks.push_back(byzantine_task(n, true, BatchTask::Algorithm::kCautious,
                                   GroupMethod::kOneShot));
  }
  return tasks;
}

/// Table II-b — stabilizing chain Sc^n (domain 8).
inline std::vector<BatchTask> table3_tasks() {
  std::vector<BatchTask> tasks;
  for (const std::size_t length : {10, 15, 20, 25, 30, 35}) {
    tasks.push_back(chain_task(length, GroupMethod::kPaperLoop));
  }
  for (const std::size_t length : {10, 20, 30}) {
    tasks.push_back(chain_task(length, GroupMethod::kOneShot));
  }
  return tasks;
}

}  // namespace lr::bench
