// Batch driver for the three paper tables: runs every Table I / II-a /
// II-b configuration as one task list through the batch executor and
// writes one merged JSON report — the checked-in BENCH_seed.json baseline
// (see EXPERIMENTS.md "Benchmark baseline").
//
// Usage:
//   bench_batch_tables [--jobs=N] [--compare-jobs=M] [--par-intra=K]
//                      [--order=MODE] [--rel=MODE] [--table=1|2|3|all]
//                      [--metrics-json=FILE] [--trace-out=FILE]
//
// --compare-jobs runs the sweep a second time at M jobs and reports the
// wall-clock ratio (the batching speedup; meaningful only on multi-core
// hardware — this is the number the ROADMAP's scaling trajectory tracks).
//
// --order applies a static variable-order heuristic
// (auto|interleave|adjacency) to every task; --table restricts the sweep
// to one paper table. CI sweeps --order=auto against the committed
// BENCH_order.json baseline (auto, because forcing a single heuristic on
// a hostile family blows up — EXPERIMENTS.md "Variable order").
//
// --rel selects the transition-relation representation (auto|mono|
// partition) for every task; CI sweeps --rel=auto on the Sc^n chain table
// against the committed BENCH_relation.json baseline so a regression on
// the partitioned early-quantification path fails visibly.
//
// --par-intra shards image/preimage and group enumeration *inside* each
// task across K workers (repair::Options::intra_jobs); jobs * K is clamped
// to the machine by the batch executor.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "repair/batch.hpp"
#include "support/cli.hpp"
#include "symbolic/order_heur.hpp"
#include "symbolic/relation.hpp"
#include "support/metrics.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "table_specs.hpp"

int main(int argc, char** argv) {
  const lr::support::CommandLine cli(argc, argv);
  const std::string trace_path = cli.get("trace-out", "");
  if (!trace_path.empty()) lr::support::trace::start();

  const std::string which_table = cli.get("table", "all");
  std::vector<lr::repair::BatchTask> tasks;
  if (which_table == "all" || which_table == "1") {
    for (auto& t : lr::bench::table1_tasks()) tasks.push_back(std::move(t));
  }
  if (which_table == "all" || which_table == "2") {
    for (auto& t : lr::bench::table2_tasks()) tasks.push_back(std::move(t));
  }
  if (which_table == "all" || which_table == "3") {
    for (auto& t : lr::bench::table3_tasks()) tasks.push_back(std::move(t));
  }
  if (tasks.empty()) {
    std::fprintf(stderr, "unknown table '%s' (1|2|3|all)\n",
                 which_table.c_str());
    return 2;
  }

  if (cli.has("order")) {
    const std::string order_arg = cli.get("order", "");
    const auto mode = lr::sym::order::parse_mode(order_arg);
    if (!mode) {
      std::fprintf(stderr,
                   "unknown order mode '%s' (decl|auto|interleave|adjacency)\n",
                   order_arg.c_str());
      return 2;
    }
    for (lr::repair::BatchTask& task : tasks) task.options.order_mode = *mode;
  }

  if (cli.has("rel")) {
    const std::string rel_arg = cli.get("rel", "");
    const auto mode = lr::sym::parse_relation_mode(rel_arg);
    if (!mode) {
      std::fprintf(stderr, "unknown relation mode '%s' (auto|mono|partition)\n",
                   rel_arg.c_str());
      return 2;
    }
    for (lr::repair::BatchTask& task : tasks) {
      task.options.relation_mode = *mode;
    }
  }

  const auto jobs = static_cast<std::size_t>(cli.get_int(
      "jobs",
      static_cast<std::int64_t>(lr::support::ThreadPool::hardware_threads())));

  const auto intra = static_cast<std::size_t>(
      std::max<std::int64_t>(0, cli.get_int("par-intra", 0)));

  lr::repair::BatchOptions options;
  options.jobs = jobs == 0 ? 1 : jobs;
  options.intra_jobs = intra;
  options.metrics_prefix = "bench";
  const lr::repair::BatchReport report =
      lr::repair::run_batch(tasks, options);

  lr::support::Table table({"Instance", "Algorithm", "Reachable states",
                            "Step 1", "Step 2", "Total", "|S'|", "Result"});
  for (const lr::repair::BatchItemResult& item : report.items) {
    table.add_row({item.name, item.algorithm,
                   lr::support::format_state_count(item.stats.reachable_states),
                   lr::support::format_duration(item.stats.step1_seconds),
                   lr::support::format_duration(item.stats.step2_seconds),
                   lr::support::format_duration(item.seconds),
                   lr::support::format_state_count(item.stats.invariant_states),
                   item.ok() ? "ok" : "FAILED"});
  }
  std::printf("=== Tables I + II-a + II-b, batched ===\n");
  table.print(std::cout);
  std::printf("\nsweep: %zu/%zu ok, wall %.3fs (jobs=%zu)\n",
              report.ok_count(), report.items.size(), report.wall_seconds,
              report.jobs);

  lr::support::metrics::Registry& m = lr::support::metrics::registry();
  const std::int64_t compare_jobs = cli.get_int("compare-jobs", 0);
  if (compare_jobs > 0) {
    lr::repair::BatchOptions compare_options;
    compare_options.jobs = static_cast<std::size_t>(compare_jobs);
    compare_options.intra_jobs = intra;
    compare_options.record_metrics = false;  // keep per-task keys from run 1
    const lr::repair::BatchReport compare =
        lr::repair::run_batch(tasks, compare_options);
    const double speedup = compare.wall_seconds > 0.0
                               ? compare.wall_seconds / report.wall_seconds
                               : 0.0;
    std::printf("compare: wall %.3fs at jobs=%zu vs %.3fs at jobs=%zu "
                "(speedup %.2fx)\n",
                compare.wall_seconds, compare.jobs, report.wall_seconds,
                report.jobs, speedup);
    m.set_gauge("bench.compare.jobs", static_cast<double>(compare.jobs));
    m.set_gauge("bench.compare.wall_seconds", compare.wall_seconds);
    m.set_gauge("bench.compare.speedup", speedup);
  }
  m.set_gauge("bench.hardware_threads",
              static_cast<double>(lr::support::ThreadPool::hardware_threads()));

  const std::string metrics_path = cli.get("metrics-json", "");
  bool ok = true;
  if (!trace_path.empty()) {
    lr::support::trace::stop();
    if (!lr::support::trace::write_chrome_json_file(trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      ok = false;
    }
  }
  if (!metrics_path.empty() &&
      !lr::support::metrics::write_json_file(metrics_path)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
    ok = false;
  }
  return ok && report.failed_count() == 0 ? 0 : 1;
}
