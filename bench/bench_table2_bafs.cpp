// Table II-a: Byzantine agreement with fail-stop faults (BAFS^n) — lazy
// repair Step 1 / Step 2 times. As in the paper, the cautious baseline is
// only run on the smallest instances ("the time ... was considerably more
// than that of the lazy repair approach. Hence, we present the results for
// the lazy repair approach only").

// `--batch-jobs=N` runs the same sweep (see table_specs.hpp) concurrently
// through the batch executor instead of google-benchmark.

#include "bench_common.hpp"
#include "casestudies/byzantine.hpp"
#include "repair/cautious.hpp"
#include "repair/lazy.hpp"
#include "support/stopwatch.hpp"
#include "table_specs.hpp"

namespace {

using lr::bench::record;
using lr::repair::GroupMethod;
using lr::repair::Options;

void BM_BAFS_Lazy_GroupLoop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program =
        lr::cs::make_byzantine({.non_generals = n, .fail_stop = true});
    lr::support::Stopwatch watch;
    const auto result = lr::repair::lazy_repair(*program);
    if (!result.success) state.SkipWithError("repair failed");
    record("BAFS^" + std::to_string(n), "lazy (group loop)", result,
           watch.seconds());
    state.counters["step1_s"] = result.stats.step1_seconds;
    state.counters["step2_s"] = result.stats.step2_seconds;
  }
}

void BM_BAFS_Lazy_OneShot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program =
        lr::cs::make_byzantine({.non_generals = n, .fail_stop = true});
    Options options;
    options.group_method = GroupMethod::kOneShot;
    lr::support::Stopwatch watch;
    const auto result = lr::repair::lazy_repair(*program, options);
    if (!result.success) state.SkipWithError("repair failed");
    record("BAFS^" + std::to_string(n), "lazy (one-shot)", result,
           watch.seconds());
    state.counters["step1_s"] = result.stats.step1_seconds;
    state.counters["step2_s"] = result.stats.step2_seconds;
  }
}

void BM_BAFS_Cautious_OneShot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto program =
        lr::cs::make_byzantine({.non_generals = n, .fail_stop = true});
    Options options;
    options.group_method = GroupMethod::kOneShot;
    lr::support::Stopwatch watch;
    const auto result = lr::repair::cautious_repair(*program, options);
    if (!result.success) state.SkipWithError("repair failed");
    record("BAFS^" + std::to_string(n), "cautious (one-shot)", result,
           watch.seconds());
  }
}

BENCHMARK(BM_BAFS_Lazy_GroupLoop)
    ->DenseRange(3, 5)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_BAFS_Lazy_OneShot)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
BENCHMARK(BM_BAFS_Cautious_OneShot)
    ->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

LR_BENCH_MAIN_WITH_BATCH(
    "Table II-a — Byzantine agreement with fail-stop faults",
    ::lr::bench::table2_tasks)
